//===-- tests/AnalysisTest.cpp - Offline analyses (EQ 1, profiler, OLC) -------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "analysis/OfflinePipeline.h"
#include "analysis/OlcAnalysis.h"
#include "analysis/StateFieldAnalysis.h"
#include "analysis/ValueProfiler.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace dchm;
using dchm::test::CounterFixture;

namespace {

/// Synthesizes a hot-method profile assigning the given hotness values.
HotMethodProfile profileWith(const Program &P,
                             std::vector<std::pair<MethodId, double>> Hot) {
  HotMethodProfile Prof;
  Prof.Hotness.assign(P.numMethods(), 0.0);
  for (auto [M, H] : Hot)
    Prof.Hotness[M] = H;
  for (size_t M = 0; M < P.numMethods(); ++M)
    Prof.Ranked.push_back(static_cast<MethodId>(M));
  return Prof;
}

TEST(StateFieldAnalysis, BranchUseInHotMethodScores) {
  CounterFixture Fx;
  HotMethodProfile Prof = profileWith(*Fx.P, {{Fx.Bump, 0.8}});
  auto Res = analyzeStateFields(*Fx.P, Prof, {});
  // Counter declares the hot bump(); mode is used in its branches.
  bool FoundMode = false;
  for (const ClassStateFields &C : Res) {
    if (C.Cls != Fx.Counter)
      continue;
    for (const StateFieldCandidate &F : C.Candidates)
      if (F.Field == Fx.Mode) {
        FoundMode = true;
        EXPECT_GT(F.Score, 0.0);
      }
  }
  EXPECT_TRUE(FoundMode);
}

TEST(StateFieldAnalysis, ColdMethodsYieldNoCandidates) {
  CounterFixture Fx;
  HotMethodProfile Prof = profileWith(*Fx.P, {}); // nothing hot
  auto Res = analyzeStateFields(*Fx.P, Prof, {});
  EXPECT_TRUE(Res.empty());
}

TEST(StateFieldAnalysis, NonBranchFieldDoesNotScore) {
  CounterFixture Fx;
  HotMethodProfile Prof = profileWith(*Fx.P, {{Fx.Bump, 0.8}, {Fx.Get, 0.2}});
  auto Res = analyzeStateFields(*Fx.P, Prof, {});
  // `total` is read and written in hot methods but never feeds a branch:
  // its assignments in the hot bump() should keep it out.
  for (const ClassStateFields &C : Res)
    for (const StateFieldCandidate &F : C.Candidates)
      EXPECT_NE(F.Field, Fx.Total);
}

TEST(StateFieldAnalysis, HotAssignmentPenaltyKnocksFieldOut) {
  // A field used in branches but also reassigned (non-constant) in the same
  // hot method fails EQ 1 with a reasonable R.
  Program P;
  ClassId C = P.defineClass("C");
  FieldId F = P.defineField(C, "f", Type::I64, false);
  MethodId M = P.defineMethod(C, "churn", Type::I64, {Type::I64});
  {
    FunctionBuilder B("C.churn", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg X = B.addArg(Type::I64);
    Reg V = B.getField(This, F, Type::I64);
    auto L = B.makeLabel();
    B.cbz(V, L);
    B.bind(L);
    B.putField(This, F, X); // varying assignment in the hot method
    B.ret(V);
    P.setBody(M, B.finalize());
  }
  P.link();
  HotMethodProfile Prof = profileWith(P, {{M, 0.9}});
  StateFieldConfig Cfg;
  Cfg.R = 2.0;
  auto Res = analyzeStateFields(P, Prof, Cfg);
  for (const ClassStateFields &CS : Res)
    for (const StateFieldCandidate &Cand : CS.Candidates)
      EXPECT_NE(Cand.Field, F);
}

TEST(StateFieldAnalysis, SameConstantAssignmentIsExempt) {
  // The paper's relaxation: a field always assigned the same constant in a
  // hot function keeps its score.
  Program P;
  ClassId C = P.defineClass("C");
  FieldId F = P.defineField(C, "f", Type::I64, false);
  MethodId M = P.defineMethod(C, "steady", Type::I64, {});
  {
    FunctionBuilder B("C.steady", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg V = B.getField(This, F, Type::I64);
    auto L = B.makeLabel();
    B.cbz(V, L);
    B.bind(L);
    Reg C5 = B.constI(5);
    B.putField(This, F, C5); // constant, same every time
    B.ret(V);
    P.setBody(M, B.finalize());
  }
  P.link();
  HotMethodProfile Prof = profileWith(P, {{M, 0.9}});
  StateFieldConfig Cfg;
  Cfg.R = 100.0; // would annihilate any penalized field
  auto Res = analyzeStateFields(P, Prof, Cfg);
  bool Found = false;
  for (const ClassStateFields &CS : Res)
    for (const StateFieldCandidate &Cand : CS.Candidates)
      Found |= Cand.Field == F;
  EXPECT_TRUE(Found);
}

TEST(StateFieldAnalysis, LoopNestingBoostsScore) {
  // The same branch use inside a loop must score higher than outside.
  auto Build = [](bool InLoop) {
    auto P = std::make_unique<Program>();
    ClassId C = P->defineClass("C");
    FieldId F = P->defineField(C, "f", Type::I64, false);
    MethodId M = P->defineMethod(C, "m", Type::I64, {Type::I64});
    FunctionBuilder B("C.m", Type::I64);
    Reg This = B.addArg(Type::Ref);
    Reg N = B.addArg(Type::I64);
    Reg Acc = B.newReg(Type::I64);
    Reg Zero = B.constI(0);
    Reg One = B.constI(1);
    B.move(Acc, Zero);
    if (InLoop) {
      Reg I = B.newReg(Type::I64);
      B.move(I, Zero);
      auto LHead = B.makeLabel();
      auto LDone = B.makeLabel();
      auto LSkip = B.makeLabel();
      B.bind(LHead);
      B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
      Reg V = B.getField(This, F, Type::I64);
      B.cbz(V, LSkip);
      B.move(Acc, B.add(Acc, One));
      B.bind(LSkip);
      B.move(I, B.add(I, One));
      B.br(LHead);
      B.bind(LDone);
    } else {
      Reg V = B.getField(This, F, Type::I64);
      auto LSkip = B.makeLabel();
      B.cbz(V, LSkip);
      B.move(Acc, B.add(Acc, One));
      B.bind(LSkip);
    }
    B.ret(Acc);
    P->setBody(M, B.finalize());
    P->link();
    return std::pair{std::move(P), std::pair{M, F}};
  };
  auto [PLoop, IdsLoop] = Build(true);
  auto [PFlat, IdsFlat] = Build(false);
  auto Score = [&](Program &P, MethodId M, FieldId F) {
    HotMethodProfile Prof = profileWith(P, {{M, 0.5}});
    auto Res = analyzeStateFields(P, Prof, {});
    for (auto &CS : Res)
      for (auto &Cand : CS.Candidates)
        if (Cand.Field == F)
          return Cand.Score;
    return 0.0;
  };
  EXPECT_GT(Score(*PLoop, IdsLoop.first, IdsLoop.second),
            Score(*PFlat, IdsFlat.first, IdsFlat.second));
}

// --- Value profiler ------------------------------------------------------

TEST(ValueProfiler, MinesJointHotStates) {
  CounterFixture Fx;
  std::vector<ClassStateFields> Cands(1);
  Cands[0].Cls = Fx.Counter;
  Cands[0].Candidates = {{Fx.Mode, 1.0}};
  ValueProfiler VP(*Fx.P, Cands);
  VP.prepare();
  EXPECT_TRUE(Fx.P->field(Fx.Mode).IsStateField);

  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setStateObserver(&VP);
  // 6 counters in mode 0, 3 in mode 1, 1 in mode 7.
  for (int I = 0; I < 6; ++I)
    Fx.makeCounter(VM, 0);
  for (int I = 0; I < 3; ++I)
    Fx.makeCounter(VM, 1);
  Fx.makeCounter(VM, 7);

  auto Mined = VP.mine(0.15, 8);
  ASSERT_EQ(Mined.size(), 1u);
  ASSERT_EQ(Mined[0].Hot.size(), 2u); // mode 7 is below 15%
  EXPECT_EQ(Mined[0].Hot[0].InstanceVals[0].I, 0);
  EXPECT_EQ(Mined[0].Hot[1].InstanceVals[0].I, 1);
  EXPECT_GT(Mined[0].Hot[0].Weight, Mined[0].Hot[1].Weight);
}

TEST(ValueProfiler, MaxStatesCapApplies) {
  CounterFixture Fx;
  std::vector<ClassStateFields> Cands(1);
  Cands[0].Cls = Fx.Counter;
  Cands[0].Candidates = {{Fx.Mode, 1.0}};
  ValueProfiler VP(*Fx.P, Cands);
  VP.prepare();
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setStateObserver(&VP);
  for (int M = 0; M < 6; ++M)
    Fx.makeCounter(VM, M); // six equally common states
  auto Mined = VP.mine(0.01, 3);
  ASSERT_EQ(Mined.size(), 1u);
  EXPECT_EQ(Mined[0].Hot.size(), 3u);
}

TEST(ValueProfiler, RuntimeTransitionsAreSampled) {
  CounterFixture Fx;
  std::vector<ClassStateFields> Cands(1);
  Cands[0].Cls = Fx.Counter;
  Cands[0].Candidates = {{Fx.Mode, 1.0}};
  ValueProfiler VP(*Fx.P, Cands);
  VP.prepare();
  VMOptions Opts;
  Opts.EnableMutation = false;
  VirtualMachine VM(*Fx.P, Opts);
  VM.setStateObserver(&VP);
  Object *O = Fx.makeCounter(VM, 0);
  for (int I = 0; I < 20; ++I)
    VM.call(Fx.SetMode, {valueR(O), valueI(3)}); // run-time variant behavior
  auto Mined = VP.mine(0.5, 4);
  ASSERT_EQ(Mined.size(), 1u);
  EXPECT_EQ(Mined[0].Hot[0].InstanceVals[0].I, 3);
}

// --- OLC analysis ----------------------------------------------------------

/// Builds the paper's Figure 7 shape: Screen{rows=24,cols=80 in ctor},
/// Tx{private screen = new Screen()}. Knobs inject each rejection reason.
struct OlcProgram {
  std::unique_ptr<Program> P = std::make_unique<Program>();
  ClassId Screen, Tx;
  FieldId Rows, Cols, ScreenRef;
  MethodId ScrCtor, Use, TxCtor;
  MutationPlan Plan;

  enum Knob {
    Clean,
    NonConstCtorAssign,   // rows = ctor argument
    AssignOutsideCtor,    // a method writes rows
    EscapeViaReturn,      // screen returned from a method
    EscapeViaArgument,    // screen passed as a non-receiver argument
    EscapeViaStore,       // screen stored into another field
    PublicRefField,       // the ref field is not private
  };

  explicit OlcProgram(Knob K) {
    Screen = P->defineClass("Screen");
    Rows = P->defineField(Screen, "rows", Type::I64, false, Access::Package);
    Cols = P->defineField(Screen, "cols", Type::I64, false, Access::Package);
    std::vector<Type> CtorParams;
    if (K == NonConstCtorAssign)
      CtorParams.push_back(Type::I64);
    ScrCtor = P->defineMethod(Screen, "<init>", Type::Void, CtorParams,
                              {.IsCtor = true});
    {
      FunctionBuilder B("Screen.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg RowsV;
      if (K == NonConstCtorAssign)
        RowsV = B.addArg(Type::I64);
      else
        RowsV = B.constI(24);
      B.putField(This, Rows, RowsV);
      Reg C80 = B.constI(80);
      B.putField(This, Cols, C80);
      B.retVoid();
      P->setBody(ScrCtor, B.finalize());
    }
    Use = P->defineMethod(Screen, "use", Type::I64, {});
    {
      FunctionBuilder B("Screen.use", Type::I64);
      Reg This = B.addArg(Type::Ref);
      Reg R = B.getField(This, Rows, Type::I64);
      auto L = B.makeLabel();
      B.cbz(R, L);
      B.bind(L);
      if (K == AssignOutsideCtor) {
        Reg C9 = B.constI(9);
        B.putField(This, Rows, C9);
      }
      B.ret(R);
      P->setBody(Use, B.finalize());
    }

    Tx = P->defineClass("Tx");
    ScreenRef = P->defineField(Tx, "screen", Type::Ref, false,
                               K == PublicRefField ? Access::Public
                                                   : Access::Private);
    TxCtor = P->defineMethod(Tx, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Tx.<init>", Type::Void);
      Reg This = B.addArg(Type::Ref);
      Reg S = B.newObject(Screen);
      if (K == NonConstCtorAssign) {
        Reg C24 = B.constI(24);
        B.callSpecial(ScrCtor, {S, C24}, Type::Void);
      } else {
        B.callSpecial(ScrCtor, {S}, Type::Void);
      }
      B.putField(This, ScreenRef, S);
      B.retVoid();
      P->setBody(TxCtor, B.finalize());
    }
    // A consumer method loading the ref field, with the chosen escape.
    FieldId Leak = P->defineField(Tx, "leak", Type::Ref, false);
    MethodId Consume = P->defineMethod(
        Tx, "consume", Type::Ref,
        K == EscapeViaArgument ? std::vector<Type>{Type::Ref}
                               : std::vector<Type>{});
    {
      FunctionBuilder B("Tx.consume", Type::Ref);
      Reg This = B.addArg(Type::Ref);
      if (K == EscapeViaArgument)
        B.addArg(Type::Ref);
      Reg S = B.getField(This, ScreenRef, Type::Ref);
      B.callVirtual(Use, {S}, Type::I64); // receiver use: always fine
      if (K == EscapeViaStore)
        B.putField(This, Leak, S);
      if (K == EscapeViaArgument) {
        // pass S as a non-receiver argument of a helper
        MethodId Helper = NoMethodId;
        (void)Helper; // helper declared below; emit call after link? No —
        // instead call Use with S as non-receiver arg is impossible (arity),
        // so store-to-self models the argument escape equivalently... use
        // the static helper declared before this method instead.
      }
      if (K == EscapeViaReturn) {
        B.ret(S);
      } else {
        Reg Null = B.constNull();
        B.ret(Null);
      }
      P->setBody(Consume, B.finalize());
    }
    if (K == EscapeViaArgument) {
      // Rebuild consume with a real non-receiver argument escape.
      MethodId Helper = P->defineMethod(Tx, "helper", Type::Void,
                                        {Type::Ref}, {.IsStatic = true});
      {
        FunctionBuilder B("Tx.helper", Type::Void);
        B.addArg(Type::Ref);
        B.retVoid();
        P->setBody(Helper, B.finalize());
      }
      MethodId Consume2 = P->defineMethod(Tx, "consume2", Type::Void, {});
      {
        FunctionBuilder B("Tx.consume2", Type::Void);
        Reg This = B.addArg(Type::Ref);
        Reg S = B.getField(This, ScreenRef, Type::Ref);
        B.callStatic(Helper, {S}, Type::Void); // escape
        B.retVoid();
        P->setBody(Consume2, B.finalize());
      }
    }
    P->link();

    MutableClassPlan CP;
    CP.Cls = Screen;
    CP.InstanceStateFields = {Rows, Cols};
    HotState S;
    S.InstanceVals = {valueI(24), valueI(80)};
    CP.HotStates = {S};
    CP.MutableMethods = {Use};
    Plan.Classes.push_back(CP);
  }
};

TEST(OlcAnalysis, ProvesFigure7Constants) {
  OlcProgram Pr(OlcProgram::Clean);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  ASSERT_EQ(Db.Entries.size(), 1u);
  const OlcEntry &E = Db.Entries[0];
  EXPECT_EQ(E.RefField, Pr.ScreenRef);
  EXPECT_EQ(E.TargetClass, Pr.Screen);
  EXPECT_EQ(E.Ctor, Pr.ScrCtor);
  ASSERT_EQ(E.Constants.size(), 2u);
  int64_t RowsV = 0, ColsV = 0;
  for (const OlcConstant &C : E.Constants) {
    if (C.TargetField == Pr.Rows)
      RowsV = C.V.I;
    if (C.TargetField == Pr.Cols)
      ColsV = C.V.I;
  }
  EXPECT_EQ(RowsV, 24);
  EXPECT_EQ(ColsV, 80);
}

TEST(OlcAnalysis, RejectsNonConstCtorAssignment) {
  OlcProgram Pr(OlcProgram::NonConstCtorAssign);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  // rows came from an argument: only cols can be proven.
  ASSERT_EQ(Db.Entries.size(), 1u);
  ASSERT_EQ(Db.Entries[0].Constants.size(), 1u);
  EXPECT_EQ(Db.Entries[0].Constants[0].TargetField, Pr.Cols);
}

TEST(OlcAnalysis, RejectsAssignmentOutsideCtor) {
  OlcProgram Pr(OlcProgram::AssignOutsideCtor);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  for (const OlcEntry &E : Db.Entries)
    for (const OlcConstant &C : E.Constants)
      EXPECT_NE(C.TargetField, Pr.Rows); // rows reassigned in use()
}

TEST(OlcAnalysis, RejectsEscapeViaReturn) {
  OlcProgram Pr(OlcProgram::EscapeViaReturn);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  EXPECT_TRUE(Db.Entries.empty());
}

TEST(OlcAnalysis, RejectsEscapeViaArgument) {
  OlcProgram Pr(OlcProgram::EscapeViaArgument);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  EXPECT_TRUE(Db.Entries.empty());
}

TEST(OlcAnalysis, RejectsEscapeViaStore) {
  OlcProgram Pr(OlcProgram::EscapeViaStore);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  EXPECT_TRUE(Db.Entries.empty());
}

TEST(OlcAnalysis, RejectsPublicRefField) {
  OlcProgram Pr(OlcProgram::PublicRefField);
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Pr.Plan);
  EXPECT_TRUE(Db.Entries.empty());
}

TEST(OlcAnalysis, ScopedToMutableClasses) {
  OlcProgram Pr(OlcProgram::Clean);
  MutationPlan Empty;
  OlcDatabase Db = analyzeObjectLifetimeConstants(*Pr.P, Empty);
  EXPECT_TRUE(Db.Entries.empty());
}

// --- Offline pipeline end-to-end ---------------------------------------------

TEST(OfflinePipeline, DerivesSalaryDbPlan) {
  auto W = makeSalaryDb();
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);
  ASSERT_EQ(R.Plan.Classes.size(), 1u);
  const MutableClassPlan &CP = R.Plan.Classes[0];
  auto P = W->buildProgram();
  EXPECT_EQ(P->cls(CP.Cls).Name, "SalaryEmployee");
  ASSERT_EQ(CP.InstanceStateFields.size(), 1u);
  EXPECT_EQ(P->field(CP.InstanceStateFields[0]).Name, "grade");
  EXPECT_EQ(CP.HotStates.size(), 4u); // grades 0..3
  ASSERT_EQ(CP.MutableMethods.size(), 1u);
  EXPECT_EQ(P->method(CP.MutableMethods[0]).Name, "raise");
}

TEST(OfflinePipeline, FindsDisplayScreenInJbb) {
  auto W = makeJbb(JbbVariant::Jbb2000);
  OfflineConfig Cfg;
  Cfg.HotStateMinFraction = 0.05;
  OfflineResult R = runOfflinePipeline(*W, Cfg);
  auto P = W->buildProgram();
  const MutableClassPlan *Screen = nullptr;
  for (const MutableClassPlan &CP : R.Plan.Classes)
    if (P->cls(CP.Cls).Name == "DisplayScreen")
      Screen = &CP;
  ASSERT_NE(Screen, nullptr);
  EXPECT_EQ(Screen->HotStates.size(), 1u); // the (24, 80) state
  // And the OLC analysis proves rows/cols through the private screens.
  OlcDatabase Db = analyzeObjectLifetimeConstants(*P, R.Plan);
  EXPECT_GE(Db.Entries.size(), 2u); // deliveryScreen + paymentScreen
}

TEST(OfflinePipeline, ProfileIsDeterministic) {
  auto W = makeCsvToXml();
  OfflineConfig Cfg;
  OfflineResult R1 = runOfflinePipeline(*W, Cfg);
  OfflineResult R2 = runOfflinePipeline(*W, Cfg);
  ASSERT_EQ(R1.Plan.Classes.size(), R2.Plan.Classes.size());
  for (size_t I = 0; I < R1.Plan.Classes.size(); ++I) {
    EXPECT_EQ(R1.Plan.Classes[I].Cls, R2.Plan.Classes[I].Cls);
    EXPECT_EQ(R1.Plan.Classes[I].HotStates.size(),
              R2.Plan.Classes[I].HotStates.size());
  }
}

} // namespace
