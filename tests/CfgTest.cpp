//===-- tests/CfgTest.cpp - CFG, dominators, loop nesting ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/CFG.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// Straight-line function: a single block, no loops.
TEST(Cfg, StraightLineIsOneBlock) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg S = B.add(A, A);
  Reg M = B.mul(S, A);
  B.ret(M);
  IRFunction F = B.finalize();
  CFG G(F);
  EXPECT_EQ(G.numBlocks(), 1u);
  EXPECT_EQ(G.numLoops(), 0u);
  EXPECT_EQ(G.loopDepthOfInst(0), 0u);
}

/// Builds an if-then-else diamond and checks block structure + dominance.
TEST(Cfg, DiamondDominance) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Out = B.newReg(Type::I64);
  auto LElse = B.makeLabel();
  auto LJoin = B.makeLabel();
  B.cbz(A, LElse);            // block 0
  Reg One = B.constI(1);      // block 1 (then)
  B.move(Out, One);
  B.br(LJoin);
  B.bind(LElse);              // block 2 (else)
  Reg Two = B.constI(2);
  B.move(Out, Two);
  B.br(LJoin);
  B.bind(LJoin);              // block 3 (join)
  B.ret(Out);
  IRFunction F = B.finalize();
  CFG G(F);
  ASSERT_EQ(G.numBlocks(), 4u);
  uint32_t Entry = G.blockOfInst(0);
  uint32_t Then = G.blockOfInst(1);
  uint32_t Else = G.blockOfInst(4);
  uint32_t Join = G.blockOfInst(static_cast<uint32_t>(F.Insts.size() - 1));
  EXPECT_TRUE(G.dominates(Entry, Then));
  EXPECT_TRUE(G.dominates(Entry, Else));
  EXPECT_TRUE(G.dominates(Entry, Join));
  EXPECT_FALSE(G.dominates(Then, Join));
  EXPECT_FALSE(G.dominates(Else, Join));
  EXPECT_EQ(G.idom(Join), Entry);
}

/// A single counted loop: body depth 1, prologue/epilogue depth 0.
TEST(Cfg, SingleLoopDepth) {
  FunctionBuilder B("f", Type::Void);
  Reg N = B.addArg(Type::I64);
  Reg I = B.newReg(Type::I64);
  Reg Zero = B.constI(0);
  Reg One = B.constI(1);
  B.move(I, Zero);
  auto LHead = B.makeLabel();
  auto LDone = B.makeLabel();
  B.bind(LHead);
  uint32_t HeadInst = static_cast<uint32_t>(B.size());
  B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
  uint32_t BodyInst = static_cast<uint32_t>(B.size());
  B.move(I, B.add(I, One));
  B.br(LHead);
  B.bind(LDone);
  B.retVoid();
  IRFunction F = B.finalize();
  CFG G(F);
  EXPECT_EQ(G.numLoops(), 1u);
  EXPECT_EQ(G.loopDepthOfInst(0), 0u); // prologue
  EXPECT_GE(G.loopDepthOfInst(HeadInst), 1u);
  EXPECT_GE(G.loopDepthOfInst(BodyInst), 1u);
  EXPECT_EQ(G.loopDepthOfInst(static_cast<uint32_t>(F.Insts.size() - 1)), 0u);
}

/// Nested loops: the inner body must have depth 2.
TEST(Cfg, NestedLoopDepth) {
  FunctionBuilder B("f", Type::Void);
  Reg N = B.addArg(Type::I64);
  Reg I = B.newReg(Type::I64);
  Reg J = B.newReg(Type::I64);
  Reg Zero = B.constI(0);
  Reg One = B.constI(1);
  B.move(I, Zero);
  auto LOut = B.makeLabel();
  auto LIn = B.makeLabel();
  auto LInDone = B.makeLabel();
  auto LDone = B.makeLabel();
  B.bind(LOut);
  B.cbz(B.cmp(Opcode::CmpLT, I, N), LDone);
  B.move(J, Zero);
  B.bind(LIn);
  B.cbz(B.cmp(Opcode::CmpLT, J, N), LInDone);
  uint32_t InnerBody = static_cast<uint32_t>(B.size());
  B.move(J, B.add(J, One));
  B.br(LIn);
  B.bind(LInDone);
  B.move(I, B.add(I, One));
  B.br(LOut);
  B.bind(LDone);
  B.retVoid();
  IRFunction F = B.finalize();
  CFG G(F);
  EXPECT_EQ(G.numLoops(), 2u);
  EXPECT_EQ(G.loopDepthOfInst(InnerBody), 2u);
  EXPECT_EQ(G.loopDepthOfInst(0), 0u);
}

/// Code after an unconditional return is unreachable.
TEST(Cfg, UnreachableBlockDetected) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  B.ret(A);
  Reg Dead = B.constI(42);
  B.ret(Dead);
  IRFunction F = B.finalize();
  CFG G(F);
  EXPECT_TRUE(G.isReachable(G.blockOfInst(0)));
  EXPECT_FALSE(G.isReachable(G.blockOfInst(1)));
}

/// Self-loop: a block branching to itself is a loop of depth 1.
TEST(Cfg, SelfLoop) {
  FunctionBuilder B("f", Type::Void);
  Reg A = B.addArg(Type::I64);
  auto L = B.makeLabel();
  B.bind(L);
  uint32_t LoopInst = static_cast<uint32_t>(B.size());
  B.cbnz(A, L);
  B.retVoid();
  IRFunction F = B.finalize();
  CFG G(F);
  EXPECT_EQ(G.numLoops(), 1u);
  EXPECT_EQ(G.loopDepthOfInst(LoopInst), 1u);
}

/// Predecessor/successor symmetry across all blocks.
TEST(Cfg, EdgeSymmetry) {
  FunctionBuilder B("f", Type::Void);
  Reg A = B.addArg(Type::I64);
  auto L1 = B.makeLabel();
  auto L2 = B.makeLabel();
  B.cbz(A, L1);
  B.br(L2);
  B.bind(L1);
  B.br(L2);
  B.bind(L2);
  B.retVoid();
  IRFunction F = B.finalize();
  CFG G(F);
  for (uint32_t Bl = 0; Bl < G.numBlocks(); ++Bl) {
    for (uint32_t S : G.blocks()[Bl].Succs) {
      const auto &Preds = G.blocks()[S].Preds;
      EXPECT_NE(std::find(Preds.begin(), Preds.end(), Bl), Preds.end());
    }
  }
}

} // namespace
