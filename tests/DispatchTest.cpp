//===-- tests/DispatchTest.cpp - TIB/JTOC/IMT dispatch paths ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <iterator>

using namespace dchm;

namespace {

/// A/B hierarchy with an interface; the driver calls through all four
/// invoke flavors.
struct DispatchFixture : ::testing::Test {
  Program P;
  ClassId Iface = NoClassId, A = NoClassId, B = NoClassId;
  MethodId IfaceTag = NoMethodId, ATag = NoMethodId, BTag = NoMethodId;
  MethodId ACtor = NoMethodId, BCtor = NoMethodId;
  MethodId StaticTag = NoMethodId, PrivTag = NoMethodId, CallPriv = NoMethodId;
  MethodId DrvVirtual = NoMethodId, DrvIface = NoMethodId,
           DrvSuper = NoMethodId;

  DispatchFixture() {
    Iface = P.defineInterface("Tagged");
    IfaceTag = P.defineMethod(Iface, "tag", Type::I64, {});

    A = P.defineClass("A");
    P.addInterface(A, Iface);
    ACtor = P.defineMethod(A, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("A.<init>", Type::Void);
      F.addArg(Type::Ref);
      F.retVoid();
      P.setBody(ACtor, F.finalize());
    }
    ATag = P.defineMethod(A, "tag", Type::I64, {});
    {
      FunctionBuilder F("A.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(1));
      P.setBody(ATag, F.finalize());
    }
    StaticTag = P.defineMethod(A, "staticTag", Type::I64, {},
                               {.IsStatic = true});
    {
      FunctionBuilder F("A.staticTag", Type::I64);
      F.ret(F.constI(77));
      P.setBody(StaticTag, F.finalize());
    }
    PrivTag = P.defineMethod(A, "privTag", Type::I64, {}, {.IsPrivate = true});
    {
      FunctionBuilder F("A.privTag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(13));
      P.setBody(PrivTag, F.finalize());
    }
    CallPriv = P.defineMethod(A, "callPriv", Type::I64, {});
    {
      FunctionBuilder F("A.callPriv", Type::I64);
      Reg This = F.addArg(Type::Ref);
      Reg V = F.callSpecial(PrivTag, {This}, Type::I64);
      F.ret(V);
      P.setBody(CallPriv, F.finalize());
    }

    B = P.defineClass("B", A);
    BCtor = P.defineMethod(B, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("B.<init>", Type::Void);
      Reg This = F.addArg(Type::Ref);
      F.callSpecial(ACtor, {This}, Type::Void);
      F.retVoid();
      P.setBody(BCtor, F.finalize());
    }
    BTag = P.defineMethod(B, "tag", Type::I64, {});
    {
      FunctionBuilder F("B.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(2));
      P.setBody(BTag, F.finalize());
    }
    // B.superTag() invokes A.tag via invokespecial (a `super.tag()` call).
    DrvSuper = P.defineMethod(B, "superTag", Type::I64, {});
    {
      FunctionBuilder F("B.superTag", Type::I64);
      Reg This = F.addArg(Type::Ref);
      Reg V = F.callSpecial(ATag, {This}, Type::I64);
      F.ret(V);
      P.setBody(DrvSuper, F.finalize());
    }

    ClassId Drv = P.defineClass("Drv");
    DrvVirtual = P.defineMethod(Drv, "viaVirtual", Type::I64, {Type::Ref},
                                {.IsStatic = true});
    {
      FunctionBuilder F("Drv.viaVirtual", Type::I64);
      Reg O = F.addArg(Type::Ref);
      F.ret(F.callVirtual(ATag, {O}, Type::I64));
      P.setBody(DrvVirtual, F.finalize());
    }
    DrvIface = P.defineMethod(Drv, "viaInterface", Type::I64, {Type::Ref},
                              {.IsStatic = true});
    {
      FunctionBuilder F("Drv.viaInterface", Type::I64);
      Reg O = F.addArg(Type::Ref);
      F.ret(F.callInterface(IfaceTag, {O}, Type::I64));
      P.setBody(DrvIface, F.finalize());
    }
    P.link();
  }

  Object *make(VirtualMachine &VM, ClassId C, MethodId Ctor) {
    ClassInfo &CI = P.cls(C);
    Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
    VM.call(Ctor, {valueR(O)});
    return O;
  }
};

TEST_F(DispatchFixture, VirtualDispatchSelectsDynamicType) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OB)}).I, 2);
}

TEST_F(DispatchFixture, InterfaceDispatchSelectsDynamicType) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  EXPECT_EQ(VM.call(DrvIface, {valueR(OA)}).I, 1);
  EXPECT_EQ(VM.call(DrvIface, {valueR(OB)}).I, 2);
  EXPECT_GE(VM.interp().stats().InterfaceCalls, 2u);
}

TEST_F(DispatchFixture, InvokespecialIgnoresDynamicType) {
  VirtualMachine VM(P, {});
  Object *OB = make(VM, B, BCtor);
  // B.superTag() must reach A.tag even though OB's dynamic type overrides
  // tag: invokespecial binds through the declaring class TIB.
  EXPECT_EQ(VM.call(DrvSuper, {valueR(OB)}).I, 1);
}

TEST_F(DispatchFixture, PrivateMethodViaInvokespecial) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  EXPECT_EQ(VM.call(CallPriv, {valueR(OA)}).I, 13);
}

TEST_F(DispatchFixture, StaticDispatchThroughJtoc) {
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(StaticTag, {}).I, 77);
  EXPECT_NE(P.staticEntry(StaticTag), nullptr); // JTOC entry installed
}

TEST_F(DispatchFixture, LazyCompilationInstallsOnFirstUse) {
  VirtualMachine VM(P, {});
  const ClassInfo &CA = P.cls(A);
  uint32_t Slot = P.method(ATag).VSlot;
  EXPECT_EQ(CA.ClassTib->Slots[Slot], nullptr);
  Object *OA = make(VM, A, ACtor);
  VM.call(DrvVirtual, {valueR(OA)});
  ASSERT_NE(CA.ClassTib->Slots[Slot], nullptr);
  EXPECT_EQ(CA.ClassTib->Slots[Slot]->optLevel(), 0); // opt0 initial compile
}

TEST_F(DispatchFixture, InstallPropagatesToNonOverridingSubclass) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  VM.call(CallPriv, {valueR(OA)}); // compiles callPriv (declared on A only)
  uint32_t Slot = P.method(CallPriv).VSlot;
  // B does not override callPriv, so its TIB must have received A's code.
  EXPECT_EQ(P.cls(B).ClassTib->Slots[Slot], P.cls(A).ClassTib->Slots[Slot]);
  EXPECT_NE(P.cls(B).ClassTib->Slots[Slot], nullptr);
}

TEST_F(DispatchFixture, InstallDoesNotClobberOverride) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  VM.call(DrvVirtual, {valueR(OA)}); // compiles A.tag
  uint32_t Slot = P.method(ATag).VSlot;
  // B overrides tag: its TIB slot must NOT hold A.tag's code.
  EXPECT_NE(P.cls(B).ClassTib->Slots[Slot], P.cls(A).ClassTib->Slots[Slot]);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OB)}).I, 2);
}

TEST_F(DispatchFixture, RecompilationReplacesCode) {
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 50;
  VirtualMachine VM(P, Opts);
  Object *OA = make(VM, A, ACtor);
  for (int I = 0; I < 200; ++I)
    VM.call(DrvVirtual, {valueR(OA)});
  const MethodInfo &M = P.method(ATag);
  EXPECT_EQ(M.CurOptLevel, 2);
  EXPECT_GE(M.CompiledVersions.size(), 3u); // opt0, opt1, opt2
  EXPECT_TRUE(M.CompiledVersions[0]->isInvalidated());
  EXPECT_EQ(M.General, P.cls(A).ClassTib->Slots[M.VSlot]);
  // Results stay correct across recompilation.
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
}

// --- Mutation-safe inline caches (docs/dispatch.md) ---------------------------

TEST_F(DispatchFixture, InlineCachesHitOnMonomorphicSites) {
  VirtualMachine VM(P, {}); // ICs default on
  ASSERT_TRUE(VM.interp().inlineCachesEnabled());
  Object *OA = make(VM, A, ACtor);
  for (int I = 0; I < 100; ++I) {
    ASSERT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
    ASSERT_EQ(VM.call(DrvIface, {valueR(OA)}).I, 1);
  }
  const ExecStats &S = VM.interp().stats();
  // One CallVirtual site and one CallInterface site, each monomorphic: one
  // slow-path fill per site (plus one refill when the lazy compilation of
  // the second driver bumps the code epoch), hits afterwards.
  EXPECT_GE(S.IcHits, 196u);
  EXPECT_LE(S.IcMisses, 4u);
}

TEST_F(DispatchFixture, InlineCachesHoldPolymorphicReceivers) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  // Alternate receivers through the same sites: a 4-way cache keeps both
  // TIBs resident, and each receiver's dynamic type still wins.
  for (int I = 0; I < 50; ++I) {
    ASSERT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
    ASSERT_EQ(VM.call(DrvVirtual, {valueR(OB)}).I, 2);
    ASSERT_EQ(VM.call(DrvIface, {valueR(OA)}).I, 1);
    ASSERT_EQ(VM.call(DrvIface, {valueR(OB)}).I, 2);
  }
  const ExecStats &S = VM.interp().stats();
  EXPECT_GE(S.IcHits, 190u); // 4 ways cover {A,B} x {virtual,interface}
  EXPECT_LE(S.IcMisses, 8u);
}

TEST_F(DispatchFixture, RecompilationBumpsEpochAndInvalidatesCaches) {
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 50;
  VirtualMachine VM(P, Opts);
  Object *OA = make(VM, A, ACtor);
  uint64_t Epoch0 = P.codeEpoch();
  for (int I = 0; I < 200; ++I)
    ASSERT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
  // Promotions patched TIB slots, so every dispatch-structure write moved
  // the code epoch; warm cache entries from before each patch are dead.
  EXPECT_EQ(P.method(ATag).CurOptLevel, 2);
  EXPECT_GT(P.codeEpoch(), Epoch0);
  const ExecStats &S = VM.interp().stats();
  // The site re-resolves after each invalidation (initial fill plus at
  // least one refill per recompilation of callee or caller)...
  EXPECT_GE(S.IcMisses, 3u);
  // ...but stays cached between invalidations: hits dominate.
  EXPECT_GT(S.IcHits, S.IcMisses * 10);
}

TEST_F(DispatchFixture, DispatchConfigsAgreeOnResultsAndSimulatedCost) {
  struct Config {
    DispatchMode DM;
    bool ICs, Arena;
  };
  const Config Configs[] = {
      {DispatchMode::Switch, false, false}, // the seed interpreter
      {DispatchMode::Switch, true, true},
      {DispatchMode::Threaded, false, false},
      {DispatchMode::Threaded, true, true},
  };
  // The fast-path knobs must never change results or simulated accounting
  // (the acceptance bar of the dispatch overhaul). Freeze promotion so all
  // four VMs execute the same opt0 code over the shared Program.
  uint64_t BaseInsts = 0, BaseCycles = 0;
  int64_t BaseSum = 0;
  for (size_t K = 0; K < std::size(Configs); ++K) {
    VMOptions Opts;
    Opts.Adaptive.Opt1Threshold = 1u << 30;
    Opts.Dispatch = Configs[K].DM;
    Opts.InlineCaches = Configs[K].ICs;
    Opts.FrameArena = Configs[K].Arena;
    VirtualMachine VM(P, Opts);
    Object *OA = make(VM, A, ACtor);
    Object *OB = make(VM, B, BCtor);
    int64_t Sum = 0;
    for (int I = 0; I < 40; ++I) {
      Sum += VM.call(DrvVirtual, {valueR(OA)}).I;
      Sum += VM.call(DrvVirtual, {valueR(OB)}).I;
      Sum += VM.call(DrvIface, {valueR(I % 2 ? OA : OB)}).I;
      Sum += VM.call(DrvSuper, {valueR(OB)}).I;
      Sum += VM.call(StaticTag, {}).I;
      Sum += VM.call(CallPriv, {valueR(OA)}).I;
    }
    const ExecStats &S = VM.interp().stats();
    if (K == 0) {
      BaseSum = Sum;
      BaseInsts = S.Insts;
      BaseCycles = S.Cycles;
      continue;
    }
    EXPECT_EQ(Sum, BaseSum) << "config " << K;
    EXPECT_EQ(S.Insts, BaseInsts) << "config " << K;
    EXPECT_EQ(S.Cycles, BaseCycles) << "config " << K;
  }
}

TEST_F(DispatchFixture, SampleCountSharedAcrossVersions) {
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 20;
  VirtualMachine VM(P, Opts);
  Object *OA = make(VM, A, ACtor);
  for (int I = 0; I < 30; ++I)
    VM.call(DrvVirtual, {valueR(OA)});
  // The method keeps one cumulative sample count (paper section 3.2.3).
  EXPECT_GE(P.method(ATag).SampleCount, 30u);
}

} // namespace
