//===-- tests/DispatchTest.cpp - TIB/JTOC/IMT dispatch paths ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// A/B hierarchy with an interface; the driver calls through all four
/// invoke flavors.
struct DispatchFixture : ::testing::Test {
  Program P;
  ClassId Iface = NoClassId, A = NoClassId, B = NoClassId;
  MethodId IfaceTag = NoMethodId, ATag = NoMethodId, BTag = NoMethodId;
  MethodId ACtor = NoMethodId, BCtor = NoMethodId;
  MethodId StaticTag = NoMethodId, PrivTag = NoMethodId, CallPriv = NoMethodId;
  MethodId DrvVirtual = NoMethodId, DrvIface = NoMethodId,
           DrvSuper = NoMethodId;

  DispatchFixture() {
    Iface = P.defineInterface("Tagged");
    IfaceTag = P.defineMethod(Iface, "tag", Type::I64, {});

    A = P.defineClass("A");
    P.addInterface(A, Iface);
    ACtor = P.defineMethod(A, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("A.<init>", Type::Void);
      F.addArg(Type::Ref);
      F.retVoid();
      P.setBody(ACtor, F.finalize());
    }
    ATag = P.defineMethod(A, "tag", Type::I64, {});
    {
      FunctionBuilder F("A.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(1));
      P.setBody(ATag, F.finalize());
    }
    StaticTag = P.defineMethod(A, "staticTag", Type::I64, {},
                               {.IsStatic = true});
    {
      FunctionBuilder F("A.staticTag", Type::I64);
      F.ret(F.constI(77));
      P.setBody(StaticTag, F.finalize());
    }
    PrivTag = P.defineMethod(A, "privTag", Type::I64, {}, {.IsPrivate = true});
    {
      FunctionBuilder F("A.privTag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(13));
      P.setBody(PrivTag, F.finalize());
    }
    CallPriv = P.defineMethod(A, "callPriv", Type::I64, {});
    {
      FunctionBuilder F("A.callPriv", Type::I64);
      Reg This = F.addArg(Type::Ref);
      Reg V = F.callSpecial(PrivTag, {This}, Type::I64);
      F.ret(V);
      P.setBody(CallPriv, F.finalize());
    }

    B = P.defineClass("B", A);
    BCtor = P.defineMethod(B, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder F("B.<init>", Type::Void);
      Reg This = F.addArg(Type::Ref);
      F.callSpecial(ACtor, {This}, Type::Void);
      F.retVoid();
      P.setBody(BCtor, F.finalize());
    }
    BTag = P.defineMethod(B, "tag", Type::I64, {});
    {
      FunctionBuilder F("B.tag", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(2));
      P.setBody(BTag, F.finalize());
    }
    // B.superTag() invokes A.tag via invokespecial (a `super.tag()` call).
    DrvSuper = P.defineMethod(B, "superTag", Type::I64, {});
    {
      FunctionBuilder F("B.superTag", Type::I64);
      Reg This = F.addArg(Type::Ref);
      Reg V = F.callSpecial(ATag, {This}, Type::I64);
      F.ret(V);
      P.setBody(DrvSuper, F.finalize());
    }

    ClassId Drv = P.defineClass("Drv");
    DrvVirtual = P.defineMethod(Drv, "viaVirtual", Type::I64, {Type::Ref},
                                {.IsStatic = true});
    {
      FunctionBuilder F("Drv.viaVirtual", Type::I64);
      Reg O = F.addArg(Type::Ref);
      F.ret(F.callVirtual(ATag, {O}, Type::I64));
      P.setBody(DrvVirtual, F.finalize());
    }
    DrvIface = P.defineMethod(Drv, "viaInterface", Type::I64, {Type::Ref},
                              {.IsStatic = true});
    {
      FunctionBuilder F("Drv.viaInterface", Type::I64);
      Reg O = F.addArg(Type::Ref);
      F.ret(F.callInterface(IfaceTag, {O}, Type::I64));
      P.setBody(DrvIface, F.finalize());
    }
    P.link();
  }

  Object *make(VirtualMachine &VM, ClassId C, MethodId Ctor) {
    ClassInfo &CI = P.cls(C);
    Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
    VM.call(Ctor, {valueR(O)});
    return O;
  }
};

TEST_F(DispatchFixture, VirtualDispatchSelectsDynamicType) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OB)}).I, 2);
}

TEST_F(DispatchFixture, InterfaceDispatchSelectsDynamicType) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  EXPECT_EQ(VM.call(DrvIface, {valueR(OA)}).I, 1);
  EXPECT_EQ(VM.call(DrvIface, {valueR(OB)}).I, 2);
  EXPECT_GE(VM.interp().stats().InterfaceCalls, 2u);
}

TEST_F(DispatchFixture, InvokespecialIgnoresDynamicType) {
  VirtualMachine VM(P, {});
  Object *OB = make(VM, B, BCtor);
  // B.superTag() must reach A.tag even though OB's dynamic type overrides
  // tag: invokespecial binds through the declaring class TIB.
  EXPECT_EQ(VM.call(DrvSuper, {valueR(OB)}).I, 1);
}

TEST_F(DispatchFixture, PrivateMethodViaInvokespecial) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  EXPECT_EQ(VM.call(CallPriv, {valueR(OA)}).I, 13);
}

TEST_F(DispatchFixture, StaticDispatchThroughJtoc) {
  VirtualMachine VM(P, {});
  EXPECT_EQ(VM.call(StaticTag, {}).I, 77);
  EXPECT_NE(P.staticEntry(StaticTag), nullptr); // JTOC entry installed
}

TEST_F(DispatchFixture, LazyCompilationInstallsOnFirstUse) {
  VirtualMachine VM(P, {});
  const ClassInfo &CA = P.cls(A);
  uint32_t Slot = P.method(ATag).VSlot;
  EXPECT_EQ(CA.ClassTib->Slots[Slot], nullptr);
  Object *OA = make(VM, A, ACtor);
  VM.call(DrvVirtual, {valueR(OA)});
  ASSERT_NE(CA.ClassTib->Slots[Slot], nullptr);
  EXPECT_EQ(CA.ClassTib->Slots[Slot]->optLevel(), 0); // opt0 initial compile
}

TEST_F(DispatchFixture, InstallPropagatesToNonOverridingSubclass) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  VM.call(CallPriv, {valueR(OA)}); // compiles callPriv (declared on A only)
  uint32_t Slot = P.method(CallPriv).VSlot;
  // B does not override callPriv, so its TIB must have received A's code.
  EXPECT_EQ(P.cls(B).ClassTib->Slots[Slot], P.cls(A).ClassTib->Slots[Slot]);
  EXPECT_NE(P.cls(B).ClassTib->Slots[Slot], nullptr);
}

TEST_F(DispatchFixture, InstallDoesNotClobberOverride) {
  VirtualMachine VM(P, {});
  Object *OA = make(VM, A, ACtor);
  Object *OB = make(VM, B, BCtor);
  VM.call(DrvVirtual, {valueR(OA)}); // compiles A.tag
  uint32_t Slot = P.method(ATag).VSlot;
  // B overrides tag: its TIB slot must NOT hold A.tag's code.
  EXPECT_NE(P.cls(B).ClassTib->Slots[Slot], P.cls(A).ClassTib->Slots[Slot]);
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OB)}).I, 2);
}

TEST_F(DispatchFixture, RecompilationReplacesCode) {
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 50;
  VirtualMachine VM(P, Opts);
  Object *OA = make(VM, A, ACtor);
  for (int I = 0; I < 200; ++I)
    VM.call(DrvVirtual, {valueR(OA)});
  const MethodInfo &M = P.method(ATag);
  EXPECT_EQ(M.CurOptLevel, 2);
  EXPECT_GE(M.CompiledVersions.size(), 3u); // opt0, opt1, opt2
  EXPECT_TRUE(M.CompiledVersions[0]->isInvalidated());
  EXPECT_EQ(M.General, P.cls(A).ClassTib->Slots[M.VSlot]);
  // Results stay correct across recompilation.
  EXPECT_EQ(VM.call(DrvVirtual, {valueR(OA)}).I, 1);
}

TEST_F(DispatchFixture, SampleCountSharedAcrossVersions) {
  VMOptions Opts;
  Opts.Adaptive.Opt1Threshold = 10;
  Opts.Adaptive.Opt2Threshold = 20;
  VirtualMachine VM(P, Opts);
  Object *OA = make(VM, A, ACtor);
  for (int I = 0; I < 30; ++I)
    VM.call(DrvVirtual, {valueR(OA)});
  // The method keeps one cumulative sample count (paper section 3.2.3).
  EXPECT_GE(P.method(ATag).SampleCount, 30u);
}

} // namespace
