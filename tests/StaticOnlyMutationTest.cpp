//===-- tests/StaticOnlyMutationTest.cpp - Static-only mutable classes --------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//
///
/// The paper's static-only corner (sections 3.2.2-3.2.3): "For mutable
/// classes that are only dependent on static fields, no special TIB is
/// needed ... pointers to special compiled code are directly updated in the
/// class TIB", and "a private instance method can still be mutated if its
/// declaring class is solely dependent on static state fields. In this case,
/// the class TIB itself can be specialized."
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// A class whose behavior depends only on a static `mode` field, with a
/// public method, a *private* method (invoked via invokespecial), and a
/// static method, all branching on the mode.
struct StaticOnlyProgram {
  Program P;
  ClassId C = NoClassId;
  FieldId Mode = NoFieldId;
  MethodId Ctor = NoMethodId, Pub = NoMethodId, Priv = NoMethodId,
           CallPriv = NoMethodId, Stat = NoMethodId, SetMode = NoMethodId;
  MutationPlan Plan;

  StaticOnlyProgram() {
    C = P.defineClass("Svc");
    Mode = P.defineField(C, "mode", Type::I64, true, Access::Private);
    Ctor = P.defineMethod(C, "<init>", Type::Void, {}, {.IsCtor = true});
    {
      FunctionBuilder B("Svc.<init>", Type::Void);
      B.addArg(Type::Ref);
      B.retVoid();
      P.setBody(Ctor, B.finalize());
    }
    auto BranchyBody = [&](const char *Name, int64_t Base) {
      FunctionBuilder B(Name, Type::I64);
      B.addArg(Type::Ref);
      Reg M = B.getStatic(Mode, Type::I64);
      auto LFast = B.makeLabel();
      B.cbz(M, LFast);
      Reg Slow = B.constI(Base + 1);
      B.ret(Slow);
      B.bind(LFast);
      Reg Fast = B.constI(Base);
      B.ret(Fast);
      return B.finalize();
    };
    Pub = P.defineMethod(C, "pub", Type::I64, {});
    P.setBody(Pub, BranchyBody("Svc.pub", 10));
    Priv = P.defineMethod(C, "priv", Type::I64, {}, {.IsPrivate = true});
    P.setBody(Priv, BranchyBody("Svc.priv", 20));
    CallPriv = P.defineMethod(C, "callPriv", Type::I64, {});
    {
      FunctionBuilder B("Svc.callPriv", Type::I64);
      Reg This = B.addArg(Type::Ref);
      B.ret(B.callSpecial(Priv, {This}, Type::I64));
      P.setBody(CallPriv, B.finalize());
    }
    Stat = P.defineMethod(C, "stat", Type::I64, {}, {.IsStatic = true});
    {
      FunctionBuilder B("Svc.stat", Type::I64);
      Reg M = B.getStatic(Mode, Type::I64);
      auto LFast = B.makeLabel();
      B.cbz(M, LFast);
      Reg Slow = B.constI(31);
      B.ret(Slow);
      B.bind(LFast);
      Reg Fast = B.constI(30);
      B.ret(Fast);
      P.setBody(Stat, B.finalize());
    }
    SetMode = P.defineMethod(C, "setMode", Type::Void, {Type::I64},
                             {.IsStatic = true});
    {
      FunctionBuilder B("Svc.setMode", Type::Void);
      Reg M = B.addArg(Type::I64);
      B.putStatic(Mode, M);
      B.retVoid();
      P.setBody(SetMode, B.finalize());
    }
    P.link();

    MutableClassPlan CP;
    CP.Cls = C;
    CP.StaticStateFields = {Mode};
    HotState S0;
    S0.StaticVals = {valueI(0)};
    CP.HotStates = {S0};
    CP.MutableMethods = {Pub, Priv, Stat};
    Plan.Classes.push_back(CP);
  }

  Object *make(VirtualMachine &VM) {
    ClassInfo &CI = P.cls(C);
    Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
    VM.call(Ctor, {valueR(O)});
    return O;
  }

  void warm(VirtualMachine &VM, Object *O) {
    for (int I = 0; I < 6000; ++I) {
      VM.call(Pub, {valueR(O)});
      VM.call(CallPriv, {valueR(O)});
      VM.call(Stat, {});
    }
  }
};

struct StaticOnlyFixture : ::testing::Test, StaticOnlyProgram {};

TEST_F(StaticOnlyFixture, NoSpecialTibsAreCreated) {
  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  EXPECT_TRUE(P.cls(C).SpecialTibs.empty());
  EXPECT_EQ(P.specialTibBytes(), 0u);
}

TEST_F(StaticOnlyFixture, ClassTibItselfIsSpecialized) {
  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  Object *O = make(VM);
  warm(VM, O);
  const MethodInfo &M = P.method(Pub);
  ASSERT_FALSE(M.Specials.empty());
  // mode == 0 matches the hot state: the CLASS TIB holds special code.
  EXPECT_EQ(P.cls(C).ClassTib->Slots[M.VSlot], M.Specials[0]);
  // Objects keep the class TIB; no per-object state exists.
  EXPECT_EQ(O->Tib, P.cls(C).ClassTib);
  EXPECT_EQ(VM.call(Pub, {valueR(O)}).I, 10);
}

TEST_F(StaticOnlyFixture, PrivateMethodMutatesThroughClassTib) {
  // The paper's private-method case: invokespecial binds through the class
  // TIB, so a static-only class's private methods get specialized too.
  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  Object *O = make(VM);
  warm(VM, O);
  const MethodInfo &M = P.method(Priv);
  ASSERT_FALSE(M.Specials.empty());
  EXPECT_EQ(P.cls(C).ClassTib->Slots[M.VSlot], M.Specials[0]);
  EXPECT_EQ(VM.call(CallPriv, {valueR(O)}).I, 20);
  VM.compiler().sync(); // async default: settle bodies before reading them
  // The specialized private body is branch-free.
  EXPECT_LT(M.Specials[0]->code().Insts.size(),
            M.General->code().Insts.size());
}

TEST_F(StaticOnlyFixture, StaticMethodMutatesThroughJtoc) {
  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  Object *O = make(VM);
  warm(VM, O);
  EXPECT_TRUE(P.staticEntry(Stat)->isSpecialized());
  EXPECT_EQ(VM.call(Stat, {}).I, 30);
}

TEST_F(StaticOnlyFixture, StaticStoreFlipsAllThreePointerKinds) {
  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  Object *O = make(VM);
  warm(VM, O);
  const MethodInfo &MPub = P.method(Pub);
  const MethodInfo &MPriv = P.method(Priv);
  ASSERT_TRUE(P.staticEntry(Stat)->isSpecialized());

  // Leave the hot state through an interpreted PutStatic.
  VM.call(SetMode, {valueI(9)});
  EXPECT_EQ(P.cls(C).ClassTib->Slots[MPub.VSlot], MPub.General);
  EXPECT_EQ(P.cls(C).ClassTib->Slots[MPriv.VSlot], MPriv.General);
  EXPECT_FALSE(P.staticEntry(Stat)->isSpecialized());
  EXPECT_EQ(VM.call(Pub, {valueR(O)}).I, 11);
  EXPECT_EQ(VM.call(CallPriv, {valueR(O)}).I, 21);
  EXPECT_EQ(VM.call(Stat, {}).I, 31);

  // Re-enter the hot state: special code everywhere again.
  VM.call(SetMode, {valueI(0)});
  EXPECT_EQ(P.cls(C).ClassTib->Slots[MPub.VSlot], MPub.Specials[0]);
  EXPECT_EQ(P.cls(C).ClassTib->Slots[MPriv.VSlot], MPriv.Specials[0]);
  EXPECT_TRUE(P.staticEntry(Stat)->isSpecialized());
  EXPECT_EQ(VM.call(Pub, {valueR(O)}).I, 10);
  EXPECT_EQ(VM.call(CallPriv, {valueR(O)}).I, 20);
  EXPECT_EQ(VM.call(Stat, {}).I, 30);
}

TEST_F(StaticOnlyFixture, TransparencyAcrossModeFlips) {
  auto Run = [&](bool Mutation) {
    StaticOnlyProgram Fresh; // independent program instance
    VMOptions Opts;
    Opts.EnableMutation = Mutation;
    VirtualMachine VM(Fresh.P, Opts);
    VM.setMutationPlan(&Fresh.Plan);
    Object *O = Fresh.make(VM);
    int64_t Sum = 0;
    for (int I = 0; I < 3000; ++I) {
      if (I % 500 == 0)
        VM.call(Fresh.SetMode, {valueI((I / 500) % 2)});
      Sum += VM.call(Fresh.Pub, {valueR(O)}).I;
      Sum += VM.call(Fresh.CallPriv, {valueR(O)}).I;
      Sum += VM.call(Fresh.Stat, {}).I;
    }
    return Sum;
  };
  EXPECT_EQ(Run(false), Run(true));
}

// --- Conflict IMT slots dispatched through special TIBs ----------------------

TEST(ImtConflictMutation, ConflictStubRoutesThroughSpecialTib) {
  // A mutable class implementing two interfaces whose methods collide in
  // one IMT slot: the conflict stub resolves through the object's *current*
  // TIB, so mutated objects reach specialized code even on the conflict
  // path.
  Program P;
  ClassId I1 = P.defineInterface("I1");
  MethodId F1 = P.defineMethod(I1, "f1", Type::I64, {});
  ClassId I2 = P.defineInterface("I2");
  while ((P.numMethods() % NumImtSlots) != (F1 % NumImtSlots))
    P.defineMethod(I2, "pad" + std::to_string(P.numMethods()), Type::I64, {});
  MethodId F2 = P.defineMethod(I2, "f2", Type::I64, {});
  ASSERT_EQ(F1 % NumImtSlots, F2 % NumImtSlots);

  ClassId C = P.defineClass("Impl");
  P.addInterface(C, I1);
  P.addInterface(C, I2);
  FieldId Mode = P.defineField(C, "mode", Type::I64, false);
  MethodId Ctor = P.defineMethod(C, "<init>", Type::Void, {Type::I64},
                                 {.IsCtor = true});
  {
    FunctionBuilder B("Impl.<init>", Type::Void);
    Reg This = B.addArg(Type::Ref);
    Reg M = B.addArg(Type::I64);
    B.putField(This, Mode, M);
    B.retVoid();
    P.setBody(Ctor, B.finalize());
  }
  // Implement every interface method (pads included) with mode-dependent
  // bodies for f1/f2 and constants for the pads.
  for (size_t MIdx = 0; MIdx < P.numMethods(); ++MIdx) {
    const MethodInfo &MI = P.method(static_cast<MethodId>(MIdx));
    if (!P.cls(MI.Owner).IsInterface)
      continue;
    MethodId Impl = P.defineMethod(C, MI.Name, MI.RetTy, MI.ParamTys);
    FunctionBuilder B("Impl." + MI.Name, Type::I64);
    Reg This = B.addArg(Type::Ref);
    if (MI.Id == F1 || MI.Id == F2) {
      Reg M = B.getField(This, Mode, Type::I64);
      auto LFast = B.makeLabel();
      B.cbz(M, LFast);
      Reg Slow = B.constI(MI.Id == F1 ? 101 : 201);
      B.ret(Slow);
      B.bind(LFast);
      Reg Fast = B.constI(MI.Id == F1 ? 100 : 200);
      B.ret(Fast);
    } else {
      B.ret(B.constI(0));
    }
    P.setBody(Impl, B.finalize());
  }
  MethodId Driver = P.defineMethod(C, "drive", Type::I64, {Type::Ref},
                                   {.IsStatic = true});
  {
    FunctionBuilder B("Impl.drive", Type::I64);
    Reg O = B.addArg(Type::Ref);
    Reg A = B.callInterface(F1, {O}, Type::I64);
    Reg Bv = B.callInterface(F2, {O}, Type::I64);
    B.ret(B.add(A, Bv));
    P.setBody(Driver, B.finalize());
  }
  P.link();

  MutationPlan Plan;
  MutableClassPlan CP;
  CP.Cls = C;
  CP.InstanceStateFields = {Mode};
  HotState S0;
  S0.InstanceVals = {valueI(0)};
  CP.HotStates = {S0};
  CP.MutableMethods = {P.findMethod(C, "f1"), P.findMethod(C, "f2")};
  Plan.Classes.push_back(CP);

  VirtualMachine VM(P, {});
  VM.setMutationPlan(&Plan);
  // The colliding IMT slot stays a conflict stub (only single-method slots
  // become TIB offsets), and conflict stubs already go through the TIB.
  const ImtEntry &E = P.cls(C).Imt->Slots[F1 % NumImtSlots];
  EXPECT_EQ(E.K, ImtEntry::Kind::Conflict);

  ClassInfo &CI = P.cls(C);
  Object *O = VM.heap().allocateInstance(CI, CI.ClassTib);
  VM.call(Ctor, {valueR(O), valueI(0)});
  ASSERT_TRUE(O->Tib->isSpecial());
  for (int I = 0; I < 6000; ++I)
    VM.call(Driver, {valueR(O)});
  // f1/f2 got specialized; dispatch through the conflict stub still lands
  // in the right (specialized) code and computes the hot-state values.
  EXPECT_FALSE(P.method(P.findMethod(C, "f1")).Specials.empty());
  EXPECT_EQ(VM.call(Driver, {valueR(O)}).I, 300); // 100 + 200
}

} // namespace
