//===-- tests/VerifierTest.cpp - IR verifier unit tests -----------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

/// Hand-assembles a function (bypassing the builder's checks) so each
/// verifier rule can be violated in isolation.
IRFunction makeRaw(std::vector<Type> RegTypes, uint16_t NumArgs,
                   std::vector<Instruction> Insts, Type RetTy = Type::Void) {
  IRFunction F;
  F.Name = "raw";
  F.RetTy = RetTy;
  F.NumArgs = NumArgs;
  F.RegTypes = std::move(RegTypes);
  F.Insts = std::move(Insts);
  return F;
}

Instruction inst(Opcode Op) {
  Instruction I;
  I.Op = Op;
  return I;
}

TEST(Verifier, AcceptsMinimalFunction) {
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({}, 0, {Ret});
  EXPECT_EQ(verifyFunction(F), "");
}

TEST(Verifier, RejectsEmptyFunction) {
  IRFunction F = makeRaw({}, 0, {});
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verifier, RejectsMissingTerminator) {
  Instruction C = inst(Opcode::ConstI);
  C.Dst = 0;
  IRFunction F = makeRaw({Type::I64}, 0, {C});
  EXPECT_NE(verifyFunction(F).find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsWriteToArgumentRegister) {
  Instruction C = inst(Opcode::ConstI);
  C.Dst = 0; // argument register
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64}, 1, {C, Ret});
  EXPECT_NE(verifyFunction(F).find("argument register"), std::string::npos);
}

TEST(Verifier, RejectsRegisterOutOfRange) {
  Instruction A = inst(Opcode::Add);
  A.Dst = 1;
  A.A = 0;
  A.B = 9; // out of range
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64, Type::I64}, 1, {A, Ret});
  EXPECT_NE(verifyFunction(F).find("out of range"), std::string::npos);
}

TEST(Verifier, RejectsTypeMismatchOnIntegerOp) {
  Instruction A = inst(Opcode::Add);
  A.Dst = 2;
  A.A = 0;
  A.B = 1; // f64 operand to integer add
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64, Type::F64, Type::I64}, 2, {A, Ret});
  EXPECT_NE(verifyFunction(F).find("expected i64"), std::string::npos);
}

TEST(Verifier, RejectsFloatOpOnIntRegisters) {
  Instruction A = inst(Opcode::FAdd);
  A.Dst = 1;
  A.A = 0;
  A.B = 0;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64, Type::F64}, 1, {A, Ret});
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verifier, RejectsBranchTargetOutOfRange) {
  Instruction Br = inst(Opcode::Br);
  Br.Imm = 99;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({}, 0, {Br, Ret});
  EXPECT_NE(verifyFunction(F).find("target out of range"), std::string::npos);
}

TEST(Verifier, RejectsCondBranchOnFloat) {
  Instruction Cb = inst(Opcode::Cbnz);
  Cb.A = 0;
  Cb.Imm = 1;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::F64}, 1, {Cb, Ret});
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verifier, RejectsValueReturnFromVoid) {
  Instruction Ret = inst(Opcode::Ret);
  Ret.A = 0;
  IRFunction F = makeRaw({Type::I64}, 1, {Ret}, Type::Void);
  EXPECT_NE(verifyFunction(F).find("void"), std::string::npos);
}

TEST(Verifier, RejectsWrongReturnType) {
  Instruction Ret = inst(Opcode::Ret);
  Ret.A = 0;
  Ret.Ty = Type::I64;
  IRFunction F = makeRaw({Type::F64}, 1, {Ret}, Type::I64);
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verifier, RejectsMoveBetweenTypes) {
  Instruction Mv = inst(Opcode::Move);
  Mv.Dst = 2;
  Mv.A = 0;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F =
      makeRaw({Type::I64, Type::I64, Type::F64}, 2, {Mv, Ret});
  EXPECT_NE(verifyFunction(F).find("different types"), std::string::npos);
}

TEST(Verifier, RejectsNonRefReceiver) {
  Instruction Call = inst(Opcode::CallVirtual);
  Call.Ty = Type::Void;
  Call.Args = {0};
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64}, 1, {Call, Ret});
  EXPECT_NE(verifyFunction(F).find("receiver"), std::string::npos);
}

TEST(Verifier, RejectsVoidCallWithDestination) {
  Instruction Call = inst(Opcode::CallStatic);
  Call.Ty = Type::Void;
  Call.Dst = 0;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::I64}, 0, {Call, Ret});
  EXPECT_NE(verifyFunction(F).find("void call"), std::string::npos);
}

TEST(Verifier, RejectsArrayOpTypeMismatch) {
  Instruction Ld = inst(Opcode::ALoad);
  Ld.Ty = Type::F64;
  Ld.Dst = 2;
  Ld.A = 0;
  Ld.B = 1;
  Instruction Ret = inst(Opcode::Ret);
  IRFunction F = makeRaw({Type::Ref, Type::I64, Type::I64}, 2, {Ld, Ret});
  EXPECT_NE(verifyFunction(F), "");
}

TEST(Verifier, ErrorMessageNamesTheFunction) {
  IRFunction F = makeRaw({}, 0, {});
  F.Name = "brokenFn";
  EXPECT_NE(verifyFunction(F).find("brokenFn"), std::string::npos);
}

} // namespace
