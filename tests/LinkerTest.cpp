//===-- tests/LinkerTest.cpp - Program linking unit tests ---------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "runtime/Program.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

TEST(Linker, InstanceFieldLayoutIncludesSuperclass) {
  Program P;
  ClassId A = P.defineClass("A");
  FieldId FA = P.defineField(A, "a", Type::I64, false);
  ClassId B = P.defineClass("B", A);
  FieldId FB = P.defineField(B, "b", Type::F64, false);
  FieldId FC = P.defineField(B, "c", Type::Ref, false);
  P.link();
  EXPECT_EQ(P.field(FA).Slot, 0u);
  EXPECT_EQ(P.field(FB).Slot, 1u);
  EXPECT_EQ(P.field(FC).Slot, 2u);
  EXPECT_EQ(P.cls(A).SlotTypes.size(), 1u);
  ASSERT_EQ(P.cls(B).SlotTypes.size(), 3u);
  EXPECT_EQ(P.cls(B).SlotTypes[1], Type::F64);
  EXPECT_EQ(P.cls(B).SlotTypes[2], Type::Ref);
}

TEST(Linker, StaticFieldsGetJtocSlots) {
  Program P;
  ClassId A = P.defineClass("A");
  FieldId F1 = P.defineField(A, "s1", Type::I64, true);
  FieldId F2 = P.defineField(A, "s2", Type::Ref, true);
  P.link();
  EXPECT_NE(P.field(F1).Slot, P.field(F2).Slot);
  EXPECT_EQ(P.numStaticSlots(), 2u);
  EXPECT_EQ(P.staticSlotType(P.field(F2).Slot), Type::Ref);
}

/// Builds A.m virtual, B overrides it, C inherits B's override.
struct OverrideFixture {
  Program P;
  ClassId A, B, C;
  MethodId Am, Bm;

  OverrideFixture() {
    A = P.defineClass("A");
    Am = P.defineMethod(A, "m", Type::I64, {});
    {
      FunctionBuilder F("A.m", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(1));
      P.setBody(Am, F.finalize());
    }
    B = P.defineClass("B", A);
    Bm = P.defineMethod(B, "m", Type::I64, {});
    {
      FunctionBuilder F("B.m", Type::I64);
      F.addArg(Type::Ref);
      F.ret(F.constI(2));
      P.setBody(Bm, F.finalize());
    }
    C = P.defineClass("C", B);
    P.link();
  }
};

TEST(Linker, OverrideSharesVtableSlot) {
  OverrideFixture Fx;
  EXPECT_EQ(Fx.P.method(Fx.Am).VSlot, Fx.P.method(Fx.Bm).VSlot);
  EXPECT_EQ(Fx.P.method(Fx.Bm).SlotRoot, Fx.Am);
}

TEST(Linker, SubclassVtableInheritsOverride) {
  OverrideFixture Fx;
  uint32_t Slot = Fx.P.method(Fx.Am).VSlot;
  EXPECT_EQ(Fx.P.cls(Fx.A).VTable[Slot], Fx.Am);
  EXPECT_EQ(Fx.P.cls(Fx.B).VTable[Slot], Fx.Bm);
  EXPECT_EQ(Fx.P.cls(Fx.C).VTable[Slot], Fx.Bm);
}

TEST(Linker, PrivateMethodsDoNotOverride) {
  Program P;
  ClassId A = P.defineClass("A");
  MethodId Am = P.defineMethod(A, "m", Type::I64, {}, {.IsPrivate = true});
  {
    FunctionBuilder F("A.m", Type::I64);
    F.addArg(Type::Ref);
    F.ret(F.constI(1));
    P.setBody(Am, F.finalize());
  }
  ClassId B = P.defineClass("B", A);
  MethodId Bm = P.defineMethod(B, "m", Type::I64, {}, {.IsPrivate = true});
  {
    FunctionBuilder F("B.m", Type::I64);
    F.addArg(Type::Ref);
    F.ret(F.constI(2));
    P.setBody(Bm, F.finalize());
  }
  P.link();
  EXPECT_NE(P.method(Am).VSlot, P.method(Bm).VSlot);
}

TEST(Linker, DifferentSignatureGetsOwnSlot) {
  Program P;
  ClassId A = P.defineClass("A");
  MethodId M1 = P.defineMethod(A, "m", Type::I64, {});
  {
    FunctionBuilder F("A.m", Type::I64);
    F.addArg(Type::Ref);
    F.ret(F.constI(1));
    P.setBody(M1, F.finalize());
  }
  ClassId B = P.defineClass("B", A);
  MethodId M2 = P.defineMethod(B, "m", Type::I64, {Type::I64}); // overload
  {
    FunctionBuilder F("B.m", Type::I64);
    F.addArg(Type::Ref);
    Reg X = F.addArg(Type::I64);
    F.ret(X);
    P.setBody(M2, F.finalize());
  }
  P.link();
  EXPECT_NE(P.method(M1).VSlot, P.method(M2).VSlot);
}

TEST(Linker, SubtypeRelation) {
  test::CounterFixture Fx;
  Program &P = *Fx.P;
  EXPECT_TRUE(P.isSubtype(Fx.SubCounter, Fx.Counter));
  EXPECT_TRUE(P.isSubtype(Fx.Counter, Fx.Counter));
  EXPECT_FALSE(P.isSubtype(Fx.Counter, Fx.SubCounter));
  // Interface subtyping, including inheritance of interfaces.
  EXPECT_TRUE(P.isSubtype(Fx.Counter, Fx.Iface));
  EXPECT_TRUE(P.isSubtype(Fx.SubCounter, Fx.Iface));
  EXPECT_FALSE(P.isSubtype(Fx.Driver, Fx.Iface));
}

TEST(Linker, ImtSlotAssigned) {
  test::CounterFixture Fx;
  Program &P = *Fx.P;
  ASSERT_NE(P.cls(Fx.Counter).Imt, nullptr);
  uint32_t Slot = Fx.IfaceBump % NumImtSlots;
  const ImtEntry &E = P.cls(Fx.Counter).Imt->Slots[Slot];
  EXPECT_EQ(E.K, ImtEntry::Kind::Direct);
  EXPECT_EQ(E.DirectImpl, Fx.Bump);
}

TEST(Linker, ImtConflictWhenMethodsCollide) {
  Program P;
  // Two interfaces whose method ids collide mod NumImtSlots: define
  // NumImtSlots filler methods so ids wrap around.
  ClassId I1 = P.defineInterface("I1");
  MethodId M1 = P.defineMethod(I1, "f1", Type::Void, {});
  ClassId I2 = P.defineInterface("I2");
  // Pad method ids to force M2 % NumImtSlots == M1 % NumImtSlots.
  while ((P.numMethods() % NumImtSlots) != (M1 % NumImtSlots))
    P.defineMethod(I2, "pad" + std::to_string(P.numMethods()), Type::Void, {});
  MethodId M2 = P.defineMethod(I2, "f2", Type::Void, {});
  ASSERT_EQ(M1 % NumImtSlots, M2 % NumImtSlots);

  ClassId C = P.defineClass("C");
  P.addInterface(C, I1);
  P.addInterface(C, I2);
  // C must implement every interface method (including the pads).
  for (size_t M = 0; M < P.numMethods(); ++M) {
    const MethodInfo &MI = P.method(static_cast<MethodId>(M));
    if (!P.cls(MI.Owner).IsInterface)
      continue;
    MethodId Impl = P.defineMethod(C, MI.Name, MI.RetTy, MI.ParamTys);
    FunctionBuilder F("C." + MI.Name, Type::Void);
    F.addArg(Type::Ref);
    F.retVoid();
    P.setBody(Impl, F.finalize());
  }
  P.link();
  const ImtEntry &E = P.cls(C).Imt->Slots[M1 % NumImtSlots];
  EXPECT_EQ(E.K, ImtEntry::Kind::Conflict);
  EXPECT_GE(E.Table.size(), 2u);
}

TEST(Linker, ResolvesFieldSlotsIntoInstructions) {
  test::CounterFixture Fx;
  const MethodInfo &M = Fx.P->method(Fx.Bump);
  bool SawResolvedGetField = false;
  for (const Instruction &I : M.Bytecode.Insts)
    if (I.Op == Opcode::GetField &&
        static_cast<FieldId>(I.Imm) == Fx.Mode)
      SawResolvedGetField = I.Aux == Fx.P->field(Fx.Mode).Slot;
  EXPECT_TRUE(SawResolvedGetField);
}

TEST(Linker, ClassTibCreatedWithNullSlots) {
  test::CounterFixture Fx;
  const ClassInfo &C = Fx.P->cls(Fx.Counter);
  ASSERT_NE(C.ClassTib, nullptr);
  EXPECT_EQ(C.ClassTib->StateIndex, -1);
  EXPECT_EQ(C.ClassTib->Slots.size(), C.VTable.size());
  for (CompiledMethod *CM : C.ClassTib->Slots)
    EXPECT_EQ(CM, nullptr); // lazy compilation
  EXPECT_EQ(C.ClassTib->Cls, &C);
}

TEST(Linker, TibSizeAccounting) {
  test::CounterFixture Fx;
  size_t Expected = 0;
  for (size_t C = 0; C < Fx.P->numClasses(); ++C) {
    const ClassInfo &CI = Fx.P->cls(static_cast<ClassId>(C));
    if (CI.ClassTib)
      Expected += CI.ClassTib->sizeBytes();
  }
  EXPECT_EQ(Fx.P->classTibBytes(), Expected);
  EXPECT_EQ(Fx.P->specialTibBytes(), 0u);
}

TEST(LinkerDeath, DuplicateClassName) {
  Program P;
  P.defineClass("A");
  EXPECT_DEATH(P.defineClass("A"), "duplicate");
}

TEST(LinkerDeath, MissingBody) {
  Program P;
  ClassId A = P.defineClass("A");
  P.defineMethod(A, "m", Type::Void, {});
  EXPECT_DEATH(P.link(), "no body");
}

TEST(LinkerDeath, WrongArgCountInCall) {
  Program P;
  ClassId A = P.defineClass("A");
  MethodId Target = P.defineMethod(A, "t", Type::Void, {Type::I64},
                                   {.IsStatic = true});
  {
    FunctionBuilder F("A.t", Type::Void);
    F.addArg(Type::I64);
    F.retVoid();
    P.setBody(Target, F.finalize());
  }
  MethodId Caller = P.defineMethod(A, "c", Type::Void, {}, {.IsStatic = true});
  {
    FunctionBuilder F("A.c", Type::Void);
    F.callStatic(Target, {}, Type::Void); // missing argument
    F.retVoid();
    P.setBody(Caller, F.finalize());
  }
  EXPECT_DEATH(P.link(), "argument count");
}

TEST(LinkerDeath, InterfaceCannotBeInstantiated) {
  Program P;
  ClassId I = P.defineInterface("I");
  ClassId A = P.defineClass("A");
  MethodId M = P.defineMethod(A, "m", Type::Void, {}, {.IsStatic = true});
  FunctionBuilder F("A.m", Type::Void);
  F.newObject(I);
  F.retVoid();
  P.setBody(M, F.finalize());
  EXPECT_DEATH(P.link(), "instantiate interface");
}

TEST(LinkerDeath, UnimplementedInterfaceMethod) {
  Program P;
  ClassId I = P.defineInterface("I");
  P.defineMethod(I, "must", Type::Void, {});
  ClassId A = P.defineClass("A");
  P.addInterface(A, I);
  EXPECT_DEATH(P.link(), "does not implement");
}

} // namespace
