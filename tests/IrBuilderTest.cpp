//===-- tests/IrBuilderTest.cpp - FunctionBuilder unit tests ------------------===//
//
// Part of DCHM, a reproduction of "Dynamic Class Hierarchy Mutation"
// (Su & Lipasti, CGO 2006).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dchm;

namespace {

TEST(IrBuilder, ArgumentRegistersComeFirst) {
  FunctionBuilder B("f", Type::I64);
  Reg A0 = B.addArg(Type::Ref);
  Reg A1 = B.addArg(Type::I64);
  EXPECT_EQ(A0, 0);
  EXPECT_EQ(A1, 1);
  Reg L = B.constI(5);
  EXPECT_EQ(L, 2);
  B.ret(L);
  IRFunction F = B.finalize();
  EXPECT_EQ(F.NumArgs, 2);
  EXPECT_EQ(F.RegTypes[0], Type::Ref);
  EXPECT_EQ(F.RegTypes[1], Type::I64);
}

TEST(IrBuilder, ConstEmitsTypedRegister) {
  FunctionBuilder B("f", Type::F64);
  Reg C = B.constF(2.5);
  B.ret(C);
  IRFunction F = B.finalize();
  ASSERT_EQ(F.Insts.size(), 2u);
  EXPECT_EQ(F.Insts[0].Op, Opcode::ConstF);
  EXPECT_DOUBLE_EQ(F.Insts[0].FImm, 2.5);
  EXPECT_EQ(F.RegTypes[C], Type::F64);
}

TEST(IrBuilder, ForwardLabelIsPatched) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  auto L = B.makeLabel();
  B.cbz(A, L);            // 1 (after the cmp-free cbz)
  Reg One = B.constI(1);  // skipped when A == 0
  B.ret(One);
  B.bind(L);
  Reg Zero = B.constI(0);
  B.ret(Zero);
  IRFunction F = B.finalize();
  // cbz is instruction 0; its target must be the first inst after bind(L).
  EXPECT_EQ(F.Insts[0].Op, Opcode::Cbz);
  EXPECT_EQ(F.Insts[0].Imm, 3);
}

TEST(IrBuilder, BackwardLabelBranches) {
  FunctionBuilder B("f", Type::Void);
  Reg A = B.addArg(Type::I64);
  auto LHead = B.makeLabel();
  B.bind(LHead);
  auto LDone = B.makeLabel();
  B.cbz(A, LDone);
  B.br(LHead);
  B.bind(LDone);
  B.retVoid();
  IRFunction F = B.finalize();
  EXPECT_EQ(F.Insts[1].Op, Opcode::Br);
  EXPECT_EQ(F.Insts[1].Imm, 0);
}

TEST(IrBuilder, FinalizedFunctionVerifies) {
  FunctionBuilder B("f", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg Bb = B.addArg(Type::I64);
  Reg S = B.add(A, Bb);
  Reg M = B.mul(S, S);
  B.ret(M);
  IRFunction F = B.finalize();
  EXPECT_EQ(verifyFunction(F), "");
}

TEST(IrBuilder, CallCarriesArgsAndType) {
  FunctionBuilder B("f", Type::I64);
  Reg R = B.addArg(Type::Ref);
  Reg V = B.callVirtual(/*MethodId=*/7, {R}, Type::I64);
  B.ret(V);
  IRFunction F = B.finalize();
  EXPECT_EQ(F.Insts[0].Op, Opcode::CallVirtual);
  EXPECT_EQ(F.Insts[0].Imm, 7);
  ASSERT_EQ(F.Insts[0].Args.size(), 1u);
  EXPECT_EQ(F.Insts[0].Args[0], R);
  EXPECT_EQ(F.Insts[0].Ty, Type::I64);
}

TEST(IrBuilder, VoidCallHasNoDestination) {
  FunctionBuilder B("f", Type::Void);
  Reg R = B.addArg(Type::Ref);
  Reg D = B.callVirtual(3, {R}, Type::Void);
  B.retVoid();
  EXPECT_EQ(D, NoReg);
  IRFunction F = B.finalize();
  EXPECT_EQ(F.Insts[0].Dst, NoReg);
}

TEST(IrBuilder, FieldOpsRecordSymbolicIds) {
  FunctionBuilder B("f", Type::I64);
  Reg O = B.addArg(Type::Ref);
  Reg V = B.getField(O, /*FieldId=*/12, Type::I64);
  B.putField(O, 12, V);
  B.ret(V);
  IRFunction F = B.finalize();
  EXPECT_EQ(F.Insts[0].Imm, 12);
  EXPECT_EQ(F.Insts[1].Imm, 12);
  EXPECT_EQ(F.Insts[1].B, V);
}

TEST(IrBuilder, PrinterMentionsOpcodeAndRegs) {
  FunctionBuilder B("pretty", Type::I64);
  Reg A = B.addArg(Type::I64);
  Reg S = B.add(A, A);
  B.ret(S);
  IRFunction F = B.finalize();
  std::string Text = F.toString();
  EXPECT_NE(Text.find("pretty"), std::string::npos);
  EXPECT_NE(Text.find("add"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(IrBuilderDeath, RetWithValueFromVoidFunction) {
  FunctionBuilder B("f", Type::Void);
  Reg A = B.addArg(Type::I64);
  EXPECT_DEATH(B.ret(A), "value return");
}

TEST(IrBuilderDeath, ArgAfterInstruction) {
  FunctionBuilder B("f", Type::Void);
  B.constI(1);
  EXPECT_DEATH(B.addArg(Type::I64), "before instructions");
}

TEST(IrBuilderDeath, UnboundLabel) {
  FunctionBuilder B("f", Type::Void);
  auto L = B.makeLabel();
  B.br(L);
  B.retVoid();
  EXPECT_DEATH(B.finalize(), "unbound label");
}

TEST(IrBuilderDeath, DoubleBind) {
  FunctionBuilder B("f", Type::Void);
  auto L = B.makeLabel();
  B.bind(L);
  EXPECT_DEATH(B.bind(L), "bound twice");
}

TEST(IrBuilderDeath, MissingTerminator) {
  FunctionBuilder B("f", Type::Void);
  B.constI(1);
  EXPECT_DEATH(B.finalize(), "terminator");
}

} // namespace
